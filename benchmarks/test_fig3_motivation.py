"""Fig 3 — motivation study bench: padding lives in user-written groups."""

from repro.experiments.fig3 import (
    gc_group_occupancy_share,
    render_fig3,
    run_fig3,
)

from benchmarks.conftest import run_once


def test_fig3_motivation(benchmark, emit):
    rows = run_once(benchmark, run_fig3)
    emit("fig3_motivation", render_fig3(rows))

    # Observation 2: padding concentrates in user/mixed groups and is
    # near-zero in GC-rewritten groups.
    gc_rows = [r for r in rows if r.kind == "gc"]
    user_rows = [r for r in rows if r.kind != "gc"]
    assert all(r.padding_fraction < 0.10 for r in gc_rows), gc_rows
    total_user_pad = sum(r.padding_blocks for r in user_rows)
    total_gc_pad = sum(r.padding_blocks for r in gc_rows)
    assert total_user_pad > 10 * max(total_gc_pad, 1)

    # SepGC's single user group pads heavily (paper: ~55 % of its writes).
    sepgc_user = next(r for r in rows
                      if r.scheme == "sepgc" and r.kind == "user")
    assert sepgc_user.padding_fraction > 0.25

    # Observation 3: splitting user writes across many groups inflates
    # padding — WARCIP (5 user groups) pads more than SepGC (1) overall.
    def scheme_padding(scheme):
        return sum(r.padding_blocks for r in rows if r.scheme == scheme)
    assert scheme_padding("warcip") > scheme_padding("sepgc")

    # Observation 4: for the separating schemes, GC groups hold most of
    # the resident data.
    for scheme in ("sepgc", "sepbit", "warcip"):
        assert gc_group_occupancy_share(rows, scheme) > 0.4, scheme
