"""Fig 8 — GC efficiency bench: overall + per-volume WA, both victim
policies, all six schemes, all three workloads."""

from repro.experiments.fig8 import adapt_reduction, render_fig8, run_fig8
from repro.experiments.workloads import PROFILES, SCHEMES

from benchmarks.conftest import run_once


def test_fig8_gc_efficiency(benchmark, emit):
    rows = run_once(benchmark, run_fig8)
    emit("fig8_gc_efficiency", render_fig8(rows))

    wins = 0
    for victim in ("greedy", "cost-benefit"):
        for profile in PROFILES:
            cell = {r.scheme: r for r in rows
                    if r.victim == victim and r.profile == profile}
            assert set(cell) == set(SCHEMES)
            # Headline claim: ADAPT achieves the lowest overall WA.  At
            # reduced volume counts a near-tie with SepGC can flip within
            # sampling noise, so require a strict win in almost every cell
            # and never more than 2 % off the best.
            best = min(cell.values(), key=lambda r: r.overall_wa)
            if best.scheme == "adapt":
                wins += 1
            assert cell["adapt"].overall_wa <= best.overall_wa * 1.02, (
                victim, profile, {s: round(r.overall_wa, 3)
                                  for s, r in cell.items()})
            # All WAs are physical (>= 1).
            assert all(r.overall_wa >= 1.0 for r in cell.values())
    assert wins >= 5, f"ADAPT strictly best in only {wins}/6 cells"

    # Reduction magnitudes on Ali/Greedy should land in the paper's band
    # (21.8-33.1 %), allowing simulator slack.
    red = adapt_reduction(rows, "ali", "greedy")
    assert all(0.03 < v < 0.7 for v in red.values()), red
    assert max(red.values()) > 0.15, red

    # Tencent (most skewed) yields lower WA than Ali for every scheme
    # under Greedy (paper §4.2).
    ali = {r.scheme: r.overall_wa for r in rows
           if r.profile == "ali" and r.victim == "greedy"}
    tencent = {r.scheme: r.overall_wa for r in rows
               if r.profile == "tencent" and r.victim == "greedy"}
    lower = sum(1 for s in SCHEMES if tencent[s] < ali[s])
    assert lower >= len(SCHEMES) - 1, (ali, tencent)

    # Per-volume boxplot statistics are ordered sanely.
    for r in rows:
        assert r.wa_p25 <= r.wa_median <= r.wa_p75
