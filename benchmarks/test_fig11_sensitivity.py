"""Fig 11 — access-density and skewness sensitivity bench."""

from repro.experiments.fig11 import (
    render_fig11,
    run_fig11_density,
    run_fig11_skew,
)

from benchmarks.conftest import run_once


def test_fig11_density(benchmark, emit):
    points = run_once(benchmark, run_fig11_density)
    emit("fig11_density", render_fig11(points))

    by = {(p.setting, p.scheme): p for p in points}
    schemes = sorted({p.scheme for p in points})

    # Light traffic: ADAPT lowest WA (paper: 21.2-53.5 % fewer GC writes);
    # SepGC beats the multi-user-group schemes (MiDA, WARCIP).
    light = {s: by[("LIGHT", s)].write_amplification for s in schemes}
    assert light["adapt"] == min(light.values()), light
    assert light["adapt"] < 0.9 * light["sepgc"], light
    # SepGC performs second only to ADAPT under light load (paper): the
    # multi-user-group schemes must not beat it beyond noise.
    assert light["sepgc"] < light["mida"] * 1.05, light
    assert light["sepgc"] < light["warcip"] * 1.05, light

    # WA decreases with density for every scheme.
    for s in schemes:
        assert by[("HEAVY", s)].write_amplification < \
            by[("LIGHT", s)].write_amplification, s

    # Heavy traffic: padding is (almost) eliminated across all schemes.
    for s in schemes:
        assert by[("HEAVY", s)].padding_ratio < 0.25, (
            s, by[("HEAVY", s)].padding_ratio)

    # ADAPT stays within a whisker of the best at heavy density
    # (paper: 5.2-22.4 % fewer GC writes than the others).
    heavy = {s: by[("HEAVY", s)].write_amplification for s in schemes}
    assert heavy["adapt"] <= min(heavy.values()) * 1.10, heavy


def test_fig11_skew(benchmark, emit):
    points = run_once(benchmark, run_fig11_skew)
    emit("fig11_skew", render_fig11(points))

    by = {(p.setting, p.scheme): p for p in points}
    schemes = sorted({p.scheme for p in points})

    # WA declines as locality rises: strongest-locality point below the
    # uniform point for every scheme (paper: all schemes improve).
    for s in schemes:
        assert by[("0.99", s)].write_amplification < \
            by[("0.00", s)].write_amplification, s

    # At alpha=0 (uniform) the schemes bunch together: block temperatures
    # are indistinguishable, so separation cannot help much.
    uniform = [by[("0.00", s)].write_amplification for s in schemes]
    assert max(uniform) / min(uniform) < 1.6, uniform

    # At strong locality ADAPT is (near-)best (paper: lowest at 0.9).
    strong = {s: by[("0.90", s)].write_amplification for s in schemes}
    assert strong["adapt"] <= min(strong.values()) * 1.10, strong
