"""Fig 12 — prototype throughput and memory bench."""

from repro.experiments.fig12 import (
    adapt_speedup,
    render_fig12,
    run_fig12a,
    run_fig12b,
)

from benchmarks.conftest import run_once


def test_fig12_prototype(benchmark, emit):
    def run_both():
        return run_fig12a(), run_fig12b()
    rows_a, rows_b = run_once(benchmark, run_both)
    emit("fig12_prototype", render_fig12(rows_a, rows_b))

    # (a) One client: all schemes within ~5 % and SepGC on top (cheapest
    # lookup path — the paper's observation).
    one = {r.scheme: r.throughput_kops for r in rows_a if r.clients == 1}
    assert max(one.values()) / min(one.values()) < 1.05, one
    assert one["sepgc"] == max(one.values())

    # (a) Scaling: at 8 clients the array is bandwidth-bound and ADAPT's
    # lower WA buys it 1.1-1.6x over the other schemes (paper band).
    for clients in (4, 8):
        speedups = adapt_speedup(rows_a, clients)
        assert all(v >= 0.99 for v in speedups.values()), (clients, speedups)
    s8 = adapt_speedup(rows_a, 8)
    assert max(s8.values()) > 1.08, s8
    assert max(s8.values()) < 2.0, s8

    # Throughput is monotone in clients for every scheme.
    for scheme in {r.scheme for r in rows_a}:
        series = sorted((r.clients, r.throughput_kops) for r in rows_a
                        if r.scheme == scheme)
        assert all(a[1] <= b[1] + 1e-9 for a, b in zip(series, series[1:]))

    # (b) ADAPT memory sits above SepBIT's but stays modest.
    sepbit, adapt = rows_b
    overhead = adapt.overhead_vs(sepbit)
    assert 0.0 < overhead < 0.35, overhead
