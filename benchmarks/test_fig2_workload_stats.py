"""Fig 2 — workload characterisation bench."""

from repro.experiments.fig2 import render_fig2, run_fig2

from benchmarks.conftest import run_once


def test_fig2_workload_stats(benchmark, emit):
    rows = run_once(benchmark, run_fig2)
    emit("fig2_workload_stats", render_fig2(rows))

    for r in rows:
        # Observation 1: sparse access density...
        assert r.frac_below_10_rps > 0.5, r
        assert r.frac_above_100_rps < 0.3, r
        # ...and small-write dominance (paper: 69.8-80.9 % <= 8 KiB).
        assert 0.6 <= r.frac_le_8kib <= 0.9, r
        assert 0.05 <= r.frac_gt_32kib <= 0.3, r
    # Tencent carries the fattest large-write tail (Fig 2b).
    by = {r.profile: r for r in rows}
    assert by["tencent"].frac_gt_32kib > by["ali"].frac_gt_32kib
