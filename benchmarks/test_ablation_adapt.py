"""Ablation benches: ADAPT mechanism toggles and victim-policy sweep."""

from repro.experiments.ablation import (
    render_ablation,
    run_mechanism_ablation,
    run_victim_ablation,
)

from benchmarks.conftest import run_once


def test_ablation_mechanisms(benchmark, emit):
    rows = run_once(benchmark, run_mechanism_ablation)
    emit("ablation_mechanisms", render_ablation(rows))

    by = {r.variant: r for r in rows}
    # Full ADAPT beats the bare substrate on production workloads.
    assert by["full"].overall_wa < by["substrate-only"].overall_wa
    # Cross-group aggregation is the padding lever: disabling it raises
    # padding traffic.
    assert by["no-aggregation"].padding_ratio > by["full"].padding_ratio
    # Every variant is a physical WA.
    assert all(r.overall_wa >= 1.0 for r in rows)


def test_ablation_victim_policies(benchmark, emit):
    rows = run_once(benchmark, run_victim_ablation)
    emit("ablation_victims", render_ablation(rows))

    by = {r.variant: r for r in rows}
    assert len(by) == 5
    # All victim policies land in a sane band; the greedy family should
    # be within 2x of the best.
    best = min(r.overall_wa for r in rows)
    assert all(r.overall_wa < 2.0 * best for r in rows)
    # d-choice approximates greedy (paper's related-work claim).
    assert abs(by["d-choice"].overall_wa - by["greedy"].overall_wa) \
        < 0.5 * by["greedy"].overall_wa
