"""Benchmark-suite plumbing.

Each module regenerates one figure of the paper: it runs the experiment
driver once under pytest-benchmark (timing the full experiment), prints
the reproduced rows, writes them to ``benchmarks/results/``, and asserts
the paper's qualitative claims (who wins, roughly by how much).

Scale is selected with ``REPRO_SCALE`` (smoke / default / paper).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, capsys):
    """Print a rendered table to the terminal (outside capture) and save
    it under benchmarks/results/<name>.txt."""
    def _emit(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")
    return _emit


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
