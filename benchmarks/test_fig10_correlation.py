"""Fig 10 — padding-reduction vs WA-reduction correlation bench."""

from repro.experiments.fig10 import correlation, render_fig10, run_fig10

from benchmarks.conftest import run_once


def test_fig10_correlation(benchmark, emit):
    points = run_once(benchmark, run_fig10)
    emit("fig10_correlation", render_fig10(points))

    assert len(points) >= 4
    # The paper's claim: WA reduction is strongly correlated with padding
    # reduction across volumes.
    r = correlation(points)
    assert r > 0.3, r
    # Volumes where ADAPT removes a large share of padding see real WA
    # wins (paper: >40 % padding reduction => >=21 % WA reduction).
    big_pad = [p for p in points if p.padding_reduction > 0.4]
    if big_pad:
        assert sum(p.wa_reduction > 0.05 for p in big_pad) \
            >= len(big_pad) * 0.6
