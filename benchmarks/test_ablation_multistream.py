"""Multi-stream mapping ablation bench (§3.1 side claim)."""

from repro.experiments.multistream import render_multistream, run_multistream

from benchmarks.conftest import run_once


def test_ablation_multistream(benchmark, emit):
    rows = run_once(benchmark, run_multistream)
    emit("ablation_multistream", render_multistream(rows))

    by = {(r.scheme, r.mode): r for r in rows}
    for scheme in {r.scheme for r in rows}:
        single = by[(scheme, "single-stream")]
        multi = by[(scheme, "multi-stream")]
        # Same host-level behaviour; device WA must not get worse with
        # per-group streams, and all WAs are physical.
        assert multi.host_wa == single.host_wa
        assert multi.device_wa <= single.device_wa + 1e-9, scheme
        assert multi.device_wa >= 1.0
    # At least one scheme shows a real in-device win.
    gains = [by[(s, "single-stream")].device_wa -
             by[(s, "multi-stream")].device_wa
             for s in {r.scheme for r in rows}]
    assert max(gains) > 0.005, gains
